(** Shared memory broker.

    One global budget of buffer pages is divided into *leases*, one per
    running query.  A query (through the dispatcher's broker hook) asks
    for a lease sized to the aggregate demand of its remaining plan; the
    broker grants what fits beside the other leases.  When mid-query
    re-optimization shrinks a plan's demand the next lease call returns
    the difference to the pool, and when a query finishes its whole lease
    is released — freed pages are then re-granted to waiting or
    memory-starved queries by the workload scheduler.  This is the
    paper's dynamic resource re-allocation (Section 2.5) lifted from one
    query's operators to a whole workload's queries.

    Invariants (tested): the sum of outstanding leases never exceeds the
    budget, and no lease outlives its query.

    {b Multi-tenancy.}  Tenants registered with [register_tenant] get a
    weighted fair share of the budget.  While a tenant is marked active
    (it has admitted-but-unfinished work) the unused part of its share is
    held in reserve: other tenants' leases cannot touch it, so one
    tenant's hash joins cannot starve another's scans.  The scheme is
    work-conserving — an idle tenant's share is available to everyone. *)

type t

(** [create ~budget_pages ~max_concurrency] — the admission floor is
    [budget_pages / max_concurrency] (at least one page): a new query is
    only admitted while that much is unleased, so every admitted query
    can make progress. *)
val create : budget_pages:int -> max_concurrency:int -> t

val budget_pages : t -> int
val floor_pages : t -> int

(** [lease ?tenant t ~id ~min_pages ~max_pages] re-negotiates query
    [id]'s lease: grants up to [max_pages] of what is free (a query's own
    current lease counts as free to itself), falling back toward
    [min_pages] under pressure.  While pending queries could still fill
    open slots, one admission floor per such query is held in reserve so
    a single greedy lease cannot serialize the batch; likewise every
    {e other} active tenant's unfilled fair share is reserved, so the
    grant a re-opt decision point sees is the {e tenant's} budget, not
    the global one.  Returns the new lease size; never exceeds the pages
    actually available, so the budget invariant holds. *)
val lease : ?tenant:string -> t -> id:int -> min_pages:int -> max_pages:int -> int

(** [set_pending t n] tells the broker how many submitted queries are not
    yet running — the scheduler updates this as the batch drains so
    reservations relax and the survivors can grow to the full budget. *)
val set_pending : t -> int -> unit

(** Return query [id]'s entire lease to the pool. *)
val release : t -> id:int -> unit

(** Current lease of a query (0 when it holds none). *)
val lease_of : t -> id:int -> int

val total_leased : t -> int
val free_pages : t -> int

(** Number of live leases. *)
val outstanding : t -> int

(** Is there room (>= floor) to admit another query? *)
val can_admit : t -> bool

(** {2 Per-tenant fair shares} *)

(** [register_tenant t ~weight name] declares a tenant; its fair share is
    [budget * weight / total_weight].  Re-registering updates the weight. *)
val register_tenant : t -> weight:int -> string -> unit

(** Mark a tenant active (has admitted-but-unfinished work).  Only active
    tenants' unfilled shares are reserved against other tenants. *)
val set_tenant_active : t -> string -> bool -> unit

(** A tenant's fair share of the budget in pages (0 if unregistered). *)
val tenant_share : t -> string -> int

(** Pages currently leased under this tenant across all its queries. *)
val tenant_leased : t -> string -> int

(** High-water mark of [tenant_leased]. *)
val tenant_peak : t -> string -> int

(** Lease calls by this tenant that were clipped while other tenants'
    floors were in reserve — a cheap "broker waits" signal for metrics. *)
val tenant_floor_waits : t -> string -> int

(** Like [can_admit] from [name]'s point of view: other tenants' reserved
    shares don't count as free, but an active tenant sitting below its
    own share can always admit regardless of what the others hold. *)
val can_admit_tenant : t -> string -> bool

(** Registered tenants with their weights, name-sorted. *)
val tenants : t -> (string * int) list

(** High-water mark of [total_leased] over the broker's lifetime. *)
val peak_leased : t -> int

(** Number of [lease] calls served. *)
val grants : t -> int

(** Pages handed back by lease shrinks and releases. *)
val reclaimed_pages : t -> int

val pp : Format.formatter -> t -> unit
