type 'a item = {
  priority : int;
  deadline : float;  (* latency-SLO deadline; [infinity] = no deadline *)
  seq : int;
  payload : 'a;
}

type 'a t = {
  capacity : int;
  mutable items : 'a item list;  (* sorted: earliest deadline, then higher
                                    priority, then FIFO *)
  mutable next_seq : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Admission.create: capacity < 0";
  { capacity; items = []; next_seq = 0 }

let length t = List.length t.items
let is_empty t = t.items = []

(* Earliest-deadline-first: a statement whose SLO clock is running out
   overtakes everything with more slack.  Deadline ties (in particular the
   deadline-free [infinity] case, which keeps the pre-SLO behaviour
   byte-identical) fall back to priority, then submission order. *)
let before a b =
  a.deadline < b.deadline
  || (a.deadline = b.deadline
      && (a.priority > b.priority
          || (a.priority = b.priority && a.seq < b.seq)))

let offer ?(deadline = infinity) t ~priority payload =
  if length t >= t.capacity then false
  else begin
    let item = { priority; deadline; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    let rec insert = function
      | [] -> [ item ]
      | x :: rest -> if before item x then item :: x :: rest else x :: insert rest
    in
    t.items <- insert t.items;
    true
  end

let take t =
  match t.items with
  | [] -> None
  | x :: rest ->
    t.items <- rest;
    Some x.payload

let peek t =
  match t.items with
  | [] -> None
  | x :: _ -> Some x.payload

(* Best-ranked item the caller can actually start (per-tenant in-flight
   caps, broker floors): the queue order is preserved for everything
   skipped, so an ineligible head does not stall distinct tenants behind
   it (no head-of-line blocking across tenants). *)
let take_if t pred =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
      if pred x.payload then begin
        t.items <- List.rev_append acc rest;
        Some x.payload
      end
      else go (x :: acc) rest
  in
  go [] t.items
