type 'a item = {
  priority : int;
  seq : int;
  payload : 'a;
}

type 'a t = {
  capacity : int;
  mutable items : 'a item list;  (* sorted: higher priority, then FIFO *)
  mutable next_seq : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Admission.create: capacity < 0";
  { capacity; items = []; next_seq = 0 }

let length t = List.length t.items
let is_empty t = t.items = []

let before a b =
  a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let offer t ~priority payload =
  if length t >= t.capacity then false
  else begin
    let item = { priority; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    let rec insert = function
      | [] -> [ item ]
      | x :: rest -> if before item x then item :: x :: rest else x :: insert rest
    in
    t.items <- insert t.items;
    true
  end

let take t =
  match t.items with
  | [] -> None
  | x :: rest ->
    t.items <- rest;
    Some x.payload
