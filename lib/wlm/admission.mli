(** Admission controller: a bounded, deadline- and priority-ordered run
    queue.

    Queries that cannot start immediately wait here.  Ordering is
    earliest-deadline-first (EDF): an item with a latency-SLO deadline
    overtakes anything with more slack, which is what lets an interactive
    statement jump a queue of batch work.  Items without a deadline
    (the default, [infinity]) keep the original behaviour exactly:
    highest priority first, FIFO within a priority.  [offer] refuses
    items beyond the capacity — the workload manager reports those as
    rejected rather than queueing unboundedly (load shedding). *)

type 'a t

val create : capacity:int -> 'a t

(** [offer ?deadline t ~priority x] is [false] when the queue is full.
    [deadline] is an absolute time in ms ([infinity] = no deadline). *)
val offer : ?deadline:float -> 'a t -> priority:int -> 'a -> bool

(** Earliest deadline first; then highest priority; FIFO within both. *)
val take : 'a t -> 'a option

(** Like [take] without removing the item. *)
val peek : 'a t -> 'a option

(** [take_if t pred] removes and returns the best-ranked item satisfying
    [pred], leaving the relative order of everything else untouched.
    Lets a scheduler skip a head-of-queue item whose tenant is at its
    in-flight cap without stalling other tenants queued behind it. *)
val take_if : 'a t -> ('a -> bool) -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
