(** Admission controller: a bounded, priority-ordered run queue.

    Queries that cannot start immediately wait here.  [take] returns the
    highest-priority waiting item; ties break in submission order (FIFO),
    so equal-priority queries are served fairly.  [offer] refuses items
    beyond the capacity — the workload manager reports those as rejected
    rather than queueing unboundedly (load shedding). *)

type 'a t

val create : capacity:int -> 'a t

(** [offer t ~priority x] is [false] when the queue is full. *)
val offer : 'a t -> priority:int -> 'a -> bool

(** Highest priority first; FIFO within a priority. *)
val take : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
