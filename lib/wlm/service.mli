(** The query service: a wall-clock scheduler multiplexing N concurrent
    sessions over one engine.

    This is the persistent, multi-tenant front half of the workload
    manager: tenants register with a latency-SLO class (interactive or
    batch), open long-lived {!Session}s, and submit statements that the
    scheduler admits (EDF over SLO deadlines under {!Slo_aware};
    FIFO + round-robin under {!Round_robin}, the PR 1 baseline),
    multiplexes one execution unit at a time over the shared
    {!Mqr_core.Dispatcher} step API, and funds through a tenant-aware
    {!Broker} (weighted fair-share floors, re-grants on completion).

    {b Determinism.}  Scheduling reads only the service's virtual
    simulated timeline — deadlines, admission times, broker state —
    never the wall clock.  The wall clock (injected via
    {!options.wall_clock}; the wlm library itself does not link unix) is
    measured and reported only.  Consequently result rows are
    byte-identical and simulated times bit-identical regardless of the
    engine's domain-pool size; real parallelism comes from intra-operator
    exchange workers and shows up purely in the wall numbers.

    {b Sanitizer.}  When the engine runs with [verify_plans = Sanitize],
    the scheduler additionally asserts at every decision point and at
    every completion that each tenant's transient pages (bloom bitmaps +
    worker pool slices over all its in-flight runs) sum to zero —
    [TEN-LIFETIME], the multi-tenant generalization of RF-/PAR-LIFETIME. *)

type policy =
  | Round_robin  (** FIFO admission, round-robin stepping (PR 1 baseline);
                     tenants share the broker globally *)
  | Slo_aware    (** EDF admission and stepping over SLO deadlines;
                     tenant fair-share floors in the broker *)

val policy_to_string : policy -> string

(** Defaults for one SLO class: the latency target statements inherit as
    deadline, and the broker fair-share weight. *)
type slo_class = { target_ms : float; weight : int }

type options = {
  max_concurrency : int;            (** in-flight statement slots *)
  max_queue : int;                  (** admission queue bound (then shed) *)
  policy : policy;
  interactive : slo_class;
  batch : slo_class;
  feedback : bool;                  (** cross-query statistics cache *)
  wall_clock : (unit -> float) option;
      (** seconds; e.g. [Unix.gettimeofday].  [None] = wall numbers 0. *)
}

val default_options : options

type t

(** The service owns its broker and admission queue; the engine (and its
    domain pool, catalog, verifier mode) is shared across tenants. *)
val create : ?options:options -> ?trace:Mqr_obs.Trace.t -> Mqr_core.Engine.t -> t

val engine : t -> Mqr_core.Engine.t
val broker : t -> Broker.t

(** Register a tenant before opening sessions for it.  [weight] and
    [target_ms] default to the options' class values.  Raises on
    duplicates. *)
val add_tenant :
  ?weight:int -> ?target_ms:float -> t -> slo:Session.slo -> string -> unit

val tenant_names : t -> string list

(** Open a session for a registered tenant.  Raises [Invalid_argument]
    for an unknown tenant. *)
val open_session : t -> tenant:string -> Session.t

(** Execute one execution unit of one statement (possibly admitting
    queued statements first).  Returns [false] when nothing is running
    or admittable. *)
val step : t -> bool

(** Step until idle. *)
val drain : t -> unit

val idle : t -> bool

(** Sum of transient pages (filter + worker) currently held by a
    tenant's in-flight runs — 0 whenever observed between steps. *)
val tenant_pages_in_flight : t -> string -> int

(** {2 Introspection}

    Read-only views of the live scheduler state, the raw material of
    {!Monitor}.  All of them are pure observation: calling them never
    advances the virtual clock or perturbs scheduling. *)

(** Every session ever opened, in open order. *)
val sessions : t -> Session.t list

(** Every statement ever submitted, in submission order. *)
val all_statements : t -> Session.stmt list

(** In-flight statements, admission order. *)
val running_statements : t -> Session.stmt list

(** Statements waiting for admission. *)
val queued_count : t -> int

(** The latest point on the shared simulated timeline any statement has
    reached. *)
val now_ms : t -> float

(** The trace the service was created with, if any. *)
val service_trace : t -> Mqr_obs.Trace.t option

val options : t -> options

(** A registered tenant's SLO target; raises for unknown tenants. *)
val tenant_target_ms : t -> string -> float

(** {2 Reporting} *)

type class_stats = {
  cs_n : int;               (** completed statements in the class *)
  cs_p50_ms : float;        (** simulated latency (finish - arrival) *)
  cs_p99_ms : float;
  cs_wall_p50_ms : float;   (** wall latency (finish - submit), ms *)
  cs_wall_p99_ms : float;
  cs_violations : int;      (** statements past their SLO target *)
}

type tenant_summary = {
  tns_tenant : string;
  tns_slo : Session.slo;
  tns_weight : int;
  tns_target_ms : float;
  tns_submitted : int;
  tns_completed : int;
  tns_failed : int;
  tns_cancelled : int;
  tns_shed : int;
  tns_replans : int;        (** mid-query plan switches, summed *)
  tns_violations : int;
  tns_deadline_miss : int;
      (** terminal statements that did not complete by their deadline:
          late completions + failed + cancelled + shed.  Also exported as
          the [svc.<tenant>.deadline_miss] counter and
          [svc.<tenant>.deadline_misses] gauge *)
  tns_min_headroom_ms : float;
      (** worst (smallest) [target - latency] over completions — negative
          once an SLO was missed; [infinity] until the tenant completes a
          statement.  Also exported as the [svc.<tenant>.slo_headroom_ms]
          gauge *)
  tns_queue_ms : float;
  tns_exec_ms : float;
  tns_peak_leased : int;
  tns_broker_waits : int;   (** leases clipped by other tenants' floors *)
}

type report = {
  statements : Session.stmt list;  (** submission order *)
  classes : (Session.slo * class_stats) list;
  tenants : tenant_summary list;
  makespan_ms : float;             (** simulated *)
  wall_makespan_ms : float;        (** 0 without a wall clock *)
  peak_leased_pages : int;
  outstanding_leases : int;        (** 0 once drained *)
  stats_published : int;
  stats_applied : int;
}

val report : t -> report
val pp_report : Format.formatter -> report -> unit
