(* Quick end-to-end exercise of the engine over a small TPC-D instance:
   runs every benchmark query in Off and Full modes and prints timings.
   Development aid; the real harness lives in bench/main.ml. *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.005 in
  Fmt.pr "generating TPC-D catalog at sf=%g...@." sf;
  let catalog = Workload.experiment_catalog ~sf () in
  let engine = Engine.create ~budget_pages:256 catalog in
  List.iter
    (fun (q : Queries.query) ->
       Fmt.pr "=== %s (%s, %d joins) ===@." q.Queries.name
         (Queries.klass_to_string q.Queries.klass)
         q.Queries.joins;
       let off = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
       let full = Engine.run_sql engine ~mode:Dispatcher.Full q.Queries.sql in
       Fmt.pr "  normal:      %8.1f ms (%d rows)@."
         off.Dispatcher.elapsed_ms
         (Array.length off.Dispatcher.rows);
       Fmt.pr "  re-optimized:%8.1f ms (%d rows, %d collectors, %d switches)@."
         full.Dispatcher.elapsed_ms
         (Array.length full.Dispatcher.rows)
         full.Dispatcher.collectors full.Dispatcher.switches;
       let same =
         Array.length off.Dispatcher.rows = Array.length full.Dispatcher.rows
       in
       if not same then Fmt.pr "  !!! RESULT MISMATCH@.";
       List.iter
         (fun ev -> Fmt.pr "    %a@." Dispatcher.pp_event ev)
         full.Dispatcher.events)
    Queries.all
