(* Smoke-check the engine's machine-readable outputs: parse them with a
   hand-rolled JSON reader (the image has no JSON library — the emitters
   in mqr_cli are hand-rolled too, so this closes the loop) and validate
   the shape.  Three formats:

     json_check plan_lint.gen.json             lint diagnostics (default)
     json_check --format monitor VIEW.json     serve `monitor ... json` views
     json_check --format prom METRICS.prom     Prometheus text exposition

   lint: a top-level array of per-query objects, each carrying "query",
   "mode", "errors", "warnings" and a "diagnostics" array whose members
   have the code/severity/pass/node_id/path/message fields.

   monitor: one object with the common view/now_ms/queued/running header
   and a per-view payload (statements, sessions, tenants, broker,
   ledger), with the cross-checks the emitter guarantees (percentages in
   [0,100], eta_hi >= eta_lo, per-status session counts summing to the
   statement count, cumulative-consistent broker leases).

   prom: not JSON at all — the Prometheus text format.  Every sample
   must belong to a preceding # TYPE family, families must be sorted by
   name, histogram buckets must be cumulative with le="+Inf" last and
   equal to _count. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* --- parser ------------------------------------------------------- *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && (match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> bad "offset %d: expected %c, found %c" c.i ch x
  | None -> bad "offset %d: expected %c, found end of input" c.i ch

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else bad "offset %d: expected %s" c.i word

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "offset %d: unterminated string" c.i
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' ->
      c.i <- c.i + 1;
      (match peek c with
       | None -> bad "offset %d: unterminated escape" c.i
       | Some e ->
         c.i <- c.i + 1;
         (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if c.i + 4 > String.length c.s then
              bad "offset %d: truncated \\u escape" c.i;
            let hex = String.sub c.s c.i 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> bad "offset %d: bad \\u escape %s" c.i hex
            in
            c.i <- c.i + 4;
            (* the emitter only escapes control characters, so plain
               byte append is enough for the round-trip check *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
          | e -> bad "offset %d: bad escape \\%c" c.i e));
      go ()
    | Some ch ->
      c.i <- c.i + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let numchar ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    c.i <- c.i + 1
  done;
  let text = String.sub c.s start (c.i - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> bad "offset %d: bad number %s" start text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "offset %d: unexpected end of input" c.i
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin c.i <- c.i + 1; Obj [] end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> c.i <- c.i + 1; members ((key, v) :: acc)
        | Some '}' -> c.i <- c.i + 1; List.rev ((key, v) :: acc)
        | _ -> bad "offset %d: expected , or } in object" c.i
      in
      Obj (members [])
    end
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin c.i <- c.i + 1; Arr [] end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> c.i <- c.i + 1; elements (v :: acc)
        | Some ']' -> c.i <- c.i + 1; List.rev (v :: acc)
        | _ -> bad "offset %d: expected , or ] in array" c.i
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then bad "offset %d: trailing garbage" c.i;
  v

(* --- shape checks -------------------------------------------------- *)

let field obj key =
  match obj with
  | Obj kvs ->
    (match List.assoc_opt key kvs with
     | Some v -> v
     | None -> bad "missing field %S" key)
  | _ -> bad "expected an object around field %S" key

let str what = function Str s -> s | _ -> bad "%s: expected a string" what
let num what = function Num f -> f | _ -> bad "%s: expected a number" what
let arr what = function Arr xs -> xs | _ -> bad "%s: expected an array" what

let severities = [ "error"; "warning"; "info" ]

let check_diag d =
  let code = str "code" (field d "code") in
  if code = "" then bad "empty diagnostic code";
  let sev = str "severity" (field d "severity") in
  if not (List.mem sev severities) then bad "unknown severity %S" sev;
  ignore (str "pass" (field d "pass"));
  ignore (num "node_id" (field d "node_id"));
  List.iter (fun p -> ignore (str "path element" p)) (arr "path" (field d "path"));
  ignore (str "message" (field d "message"));
  (match d with
   | Obj kvs ->
     (match List.assoc_opt "hint" kvs with
      | Some h -> ignore (str "hint" h)
      | None -> ())
   | _ -> ());
  sev

let check_query q =
  let name = str "query" (field q "query") in
  if name = "" then bad "empty query name";
  ignore (str "mode" (field q "mode"));
  let errors = int_of_float (num "errors" (field q "errors")) in
  let warnings = int_of_float (num "warnings" (field q "warnings")) in
  let diags = arr "diagnostics" (field q "diagnostics") in
  let sevs = List.map check_diag diags in
  let count s = List.length (List.filter (( = ) s) sevs) in
  if count "error" <> errors then
    bad "%s: errors field says %d, diagnostics carry %d" name errors
      (count "error");
  if count "warning" <> warnings then
    bad "%s: warnings field says %d, diagnostics carry %d" name warnings
      (count "warning");
  (name, List.length diags)

(* --- monitor views (serve `monitor VIEW json`) --------------------- *)

let bool_ what = function Bool b -> b | _ -> bad "%s: expected a bool" what

let int_ what v = int_of_float (num what v)

(* number or null: the emitter writes null for absent/non-finite values *)
let opt_num what = function
  | Null -> None
  | Num f -> Some f
  | _ -> bad "%s: expected a number or null" what

let statement_states =
  [ "queued"; "running"; "done"; "failed"; "cancelled"; "shed" ]

let check_statement s =
  ignore (int_ "id" (field s "id"));
  if str "label" (field s "label") = "" then bad "empty statement label";
  ignore (str "tenant" (field s "tenant"));
  ignore (int_ "session" (field s "session"));
  let state = str "state" (field s "state") in
  if not (List.mem state statement_states) then
    bad "unknown statement state %S" state;
  ignore (str "mode" (field s "mode"));
  ignore (num "arrival_ms" (field s "arrival_ms"));
  ignore (num "deadline_ms" (field s "deadline_ms"));
  (match opt_num "percent" (field s "percent") with
   | Some p when p < 0.0 || p > 100.0 -> bad "percent %g outside [0,100]" p
   | _ -> ());
  let lo = opt_num "eta_lo_ms" (field s "eta_lo_ms") in
  let hi = opt_num "eta_hi_ms" (field s "eta_hi_ms") in
  (match lo, hi with
   | Some lo, Some hi when hi < lo ->
     bad "eta interval inverted: [%g, %g]" lo hi
   | _ -> ());
  if int_ "updates" (field s "updates") < 0 then bad "negative updates";
  if int_ "pages" (field s "pages") < 0 then bad "negative pages";
  ignore (bool_ "deadline_risk" (field s "deadline_risk"))

let check_session s =
  ignore (int_ "id" (field s "id"));
  ignore (str "tenant" (field s "tenant"));
  ignore (str "slo" (field s "slo"));
  ignore (bool_ "closed" (field s "closed"));
  let total = int_ "statements" (field s "statements") in
  let by_status =
    List.map
      (fun k -> int_ k (field s k))
      [ "queued"; "running"; "done"; "failed"; "cancelled"; "shed" ]
  in
  let sum = List.fold_left ( + ) 0 by_status in
  if sum <> total then
    bad "session status counts sum to %d, statements says %d" sum total

let check_tenant t =
  if str "tenant" (field t "tenant") = "" then bad "empty tenant name";
  ignore (str "slo" (field t "slo"));
  if int_ "weight" (field t "weight") <= 0 then bad "non-positive weight";
  ignore (num "target_ms" (field t "target_ms"));
  List.iter
    (fun k -> if int_ k (field t k) < 0 then bad "negative %s" k)
    [ "submitted"; "completed"; "failed"; "cancelled"; "shed"; "replans";
      "slo_violations"; "deadline_misses"; "at_risk"; "share_pages";
      "leased_pages"; "peak_leased_pages"; "floor_waits" ];
  ignore (opt_num "min_headroom_ms" (field t "min_headroom_ms"));
  (match opt_num "share_utilization" (field t "share_utilization") with
   | Some u when u < 0.0 -> bad "negative share_utilization"
   | _ -> ());
  ignore (num "queue_ms" (field t "queue_ms"));
  ignore (num "exec_ms" (field t "exec_ms"))

let check_broker v =
  List.iter
    (fun k -> if int_ k (field v k) < 0 then bad "negative %s" k)
    [ "budget_pages"; "floor_pages"; "total_leased"; "free_pages";
      "outstanding"; "peak_leased"; "grants"; "reclaimed_pages" ];
  let total = int_ "total_leased" (field v "total_leased") in
  let leases = arr "leases" (field v "leases") in
  let sum =
    List.fold_left
      (fun acc l ->
         ignore (int_ "lease id" (field l "id"));
         ignore (str "lease tenant" (field l "tenant"));
         ignore (str "lease label" (field l "label"));
         let pages = int_ "lease pages" (field l "pages") in
         if pages <= 0 then bad "lease with %d pages listed" pages;
         acc + pages)
      0 leases
  in
  if sum > total then
    bad "lease table holds %d pages but total_leased says %d" sum total;
  List.length leases

let ledger_kinds = [ "considered"; "switched"; "rejected"; "realloc" ]

let check_ledger_entry d =
  if str "query" (field d "query") = "" then bad "empty ledger query";
  ignore (int_ "seq" (field d "seq"));
  ignore (num "ts_ms" (field d "ts_ms"));
  ignore (str "unit_op" (field d "unit_op"));
  ignore (num "est_rows" (field d "est_rows"));
  ignore (int_ "actual_rows" (field d "actual_rows"));
  ignore (num "error" (field d "error"));
  let kind = str "kind" (field d "kind") in
  if not (List.mem kind ledger_kinds) then bad "unknown ledger kind %S" kind;
  (match kind with
   | "considered" ->
     ignore (str "decision" (field d "decision"));
     ignore (num "t_improved" (field d "t_improved"));
     ignore (num "t_optimizer" (field d "t_optimizer"));
     ignore (num "t_opt_estimated" (field d "t_opt_estimated"));
     ignore (bool_ "forced" (field d "forced"))
   | "switched" ->
     ignore (num "t_new_total" (field d "t_new_total"));
     ignore (num "t_improved" (field d "t_improved"));
     ignore (num "materialize_ms" (field d "materialize_ms"))
   | "rejected" ->
     ignore (num "t_new_total" (field d "t_new_total"));
     ignore (num "t_improved" (field d "t_improved"))
   | _ ->
     ignore (int_ "granted_pages" (field d "granted_pages"));
     ignore (int_ "consumers" (field d "consumers")))

let check_monitor v =
  let view = str "view" (field v "view") in
  ignore (num "now_ms" (field v "now_ms"));
  if int_ "queued" (field v "queued") < 0 then bad "negative queued";
  if int_ "running" (field v "running") < 0 then bad "negative running";
  let count_of key check =
    let xs = arr key (field v key) in
    List.iter check xs;
    List.length xs
  in
  let n =
    match view with
    | "statements" -> count_of "statements" check_statement
    | "sessions" -> count_of "sessions" check_session
    | "tenants" -> count_of "tenants" check_tenant
    | "broker" -> check_broker v
    | "ledger" -> count_of "ledger" check_ledger_entry
    | s -> bad "unknown monitor view %S" s
  in
  (view, n)

(* --- Prometheus text exposition ------------------------------------ *)

(* Not JSON: one line per sample, `# TYPE family kind` headers.  Checks:
   every sample belongs to the current family, families sorted by name,
   histogram buckets cumulative with le="+Inf" last and equal to
   _count. *)

let prom_name_ok name =
  name <> ""
  && (match name.[0] with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
      | _ -> false)
  && String.for_all
       (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
          | _ -> false)
       name

let prom_kinds = [ "counter"; "gauge"; "histogram" ]

type prom_family = {
  mutable pf_name : string;
  mutable pf_kind : string;
  mutable pf_samples : int;
  (* histogram state *)
  mutable pf_last_cum : int;       (* last bucket's cumulative count *)
  mutable pf_inf : int option;     (* le="+Inf" bucket value *)
  mutable pf_inf_last : bool;      (* no bucket may follow +Inf *)
  mutable pf_count : int option;   (* _count sample value *)
}

let finish_family fam total =
  if fam.pf_name <> "" then begin
    if fam.pf_kind = "histogram" then begin
      (match fam.pf_inf with
       | None -> bad "%s: histogram without a +Inf bucket" fam.pf_name
       | Some inf ->
         (match fam.pf_count with
          | None -> bad "%s: histogram without a _count sample" fam.pf_name
          | Some c when c <> inf ->
            bad "%s: +Inf bucket %d disagrees with _count %d" fam.pf_name
              inf c
          | Some _ -> ()))
    end;
    if fam.pf_samples = 0 then bad "%s: family with no samples" fam.pf_name;
    incr total
  end

let check_prom text =
  let lines = String.split_on_char '\n' text in
  let fam =
    { pf_name = ""; pf_kind = ""; pf_samples = 0; pf_last_cum = 0;
      pf_inf = None; pf_inf_last = false; pf_count = None }
  in
  let families = ref 0 in
  let samples = ref 0 in
  let lineno = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> bad "line %d: %s" !lineno m) fmt
  in
  List.iter
    (fun line ->
       incr lineno;
       if line = "" then ()
       else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
         finish_family fam families;
         let rest = String.sub line 7 (String.length line - 7) in
         match String.split_on_char ' ' rest with
         | [ name; kind ] ->
           if not (prom_name_ok name) then fail "bad family name %S" name;
           if not (List.mem kind prom_kinds) then
             fail "unknown family kind %S" kind;
           if fam.pf_name <> "" && String.compare name fam.pf_name <= 0 then
             fail "family %s out of order after %s" name fam.pf_name;
           fam.pf_name <- name;
           fam.pf_kind <- kind;
           fam.pf_samples <- 0;
           fam.pf_last_cum <- 0;
           fam.pf_inf <- None;
           fam.pf_inf_last <- false;
           fam.pf_count <- None
         | _ -> fail "malformed TYPE line"
       end
       else if line.[0] = '#' then ()
       else begin
         (* sample: name[{le="..."}] value *)
         if fam.pf_name = "" then fail "sample before any # TYPE line";
         let name_end =
           match String.index_opt line ' ', String.index_opt line '{' with
           | Some sp, Some br -> Stdlib.min sp br
           | Some sp, None -> sp
           | None, _ -> fail "sample line without a value"
         in
         let name = String.sub line 0 name_end in
         if not (prom_name_ok name) then fail "bad metric name %S" name;
         let value_str =
           match String.rindex_opt line ' ' with
           | Some sp -> String.sub line (sp + 1) (String.length line - sp - 1)
           | None -> fail "sample line without a value"
         in
         let value =
           match float_of_string_opt value_str with
           | Some v -> v
           | None -> fail "bad sample value %S" value_str
         in
         let suffix_of base =
           if name = base then ""
           else if
             String.length name > String.length base
             && String.sub name 0 (String.length base) = base
           then String.sub name (String.length base)
               (String.length name - String.length base)
           else fail "sample %s outside family %s" name fam.pf_name
         in
         (match fam.pf_kind with
          | "counter" | "gauge" ->
            if name <> fam.pf_name then
              fail "sample %s outside family %s" name fam.pf_name;
            if fam.pf_kind = "counter" && value < 0.0 then
              fail "negative counter %s" name
          | _ ->
            (match suffix_of fam.pf_name with
             | "_bucket" ->
               if fam.pf_inf_last then
                 fail "%s: bucket after le=\"+Inf\"" fam.pf_name;
               let v = int_of_float value in
               if v < fam.pf_last_cum then
                 fail "%s: bucket counts not cumulative (%d after %d)"
                   fam.pf_name v fam.pf_last_cum;
               fam.pf_last_cum <- v;
               (* `le="+Inf"` closes the bucket series *)
               let is_inf =
                 let marker = {|le="+Inf"|} in
                 let rec find i =
                   i + String.length marker <= String.length line
                   && (String.sub line i (String.length marker) = marker
                       || find (i + 1))
                 in
                 find 0
               in
               if is_inf then begin
                 fam.pf_inf <- Some v;
                 fam.pf_inf_last <- true
               end
             | "_sum" -> ()
             | "_count" ->
               if not fam.pf_inf_last then
                 fail "%s: _count before the +Inf bucket" fam.pf_name;
               fam.pf_count <- Some (int_of_float value)
             | s -> fail "unknown histogram suffix %S" s));
         fam.pf_samples <- fam.pf_samples + 1;
         incr samples
       end)
    lines;
  finish_family fam families;
  (!families, !samples)

(* --- driver --------------------------------------------------------- *)

let check_lint file text =
  match parse text with
  | Arr queries ->
    let checked = List.map check_query queries in
    let diags = List.fold_left (fun acc (_, n) -> acc + n) 0 checked in
    Printf.printf "json_check: %s ok (%d queries, %d diagnostics)\n" file
      (List.length checked) diags
  | _ -> bad "top level must be an array"

let check_monitor_file file text =
  match parse text with
  | Obj _ as v ->
    let view, n = check_monitor v in
    Printf.printf "json_check: %s ok (monitor %s, %d entries)\n" file view n
  | _ -> bad "top level must be an object"

let check_prom_file file text =
  let families, samples = check_prom text in
  Printf.printf "json_check: %s ok (prometheus, %d families, %d samples)\n"
    file families samples

let () =
  let usage () =
    prerr_endline "usage: json_check [--format lint|monitor|prom] FILE";
    exit 2
  in
  let format, file =
    match Sys.argv with
    | [| _; f |] -> ("lint", f)
    | [| _; "--format"; fmt; f |] -> (fmt, f)
    | _ -> usage ()
  in
  let text = In_channel.with_open_text file In_channel.input_all in
  let run = function
    | "lint" -> check_lint file text
    | "monitor" -> check_monitor_file file text
    | "prom" -> check_prom_file file text
    | _ -> usage ()
  in
  match run format with
  | () -> ()
  | exception Bad m ->
    Printf.eprintf "json_check: %s: %s\n" file m;
    exit 1
