(* Smoke-check the machine-readable lint output: parse it with a
   hand-rolled JSON reader (the image has no JSON library — the emitter
   in mqr_cli is hand-rolled too, so this closes the loop) and validate
   the shape: a top-level array of per-query objects, each carrying
   "query", "mode", "errors", "warnings" and a "diagnostics" array whose
   members have the code/severity/pass/node_id/path/message fields.

     json_check plan_lint.gen.json *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* --- parser ------------------------------------------------------- *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && (match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> bad "offset %d: expected %c, found %c" c.i ch x
  | None -> bad "offset %d: expected %c, found end of input" c.i ch

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else bad "offset %d: expected %s" c.i word

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "offset %d: unterminated string" c.i
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' ->
      c.i <- c.i + 1;
      (match peek c with
       | None -> bad "offset %d: unterminated escape" c.i
       | Some e ->
         c.i <- c.i + 1;
         (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if c.i + 4 > String.length c.s then
              bad "offset %d: truncated \\u escape" c.i;
            let hex = String.sub c.s c.i 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> bad "offset %d: bad \\u escape %s" c.i hex
            in
            c.i <- c.i + 4;
            (* the emitter only escapes control characters, so plain
               byte append is enough for the round-trip check *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
          | e -> bad "offset %d: bad escape \\%c" c.i e));
      go ()
    | Some ch ->
      c.i <- c.i + 1;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let numchar ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    c.i <- c.i + 1
  done;
  let text = String.sub c.s start (c.i - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> bad "offset %d: bad number %s" start text

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "offset %d: unexpected end of input" c.i
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some '}' then begin c.i <- c.i + 1; Obj [] end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> c.i <- c.i + 1; members ((key, v) :: acc)
        | Some '}' -> c.i <- c.i + 1; List.rev ((key, v) :: acc)
        | _ -> bad "offset %d: expected , or } in object" c.i
      in
      Obj (members [])
    end
  | Some '[' ->
    c.i <- c.i + 1;
    skip_ws c;
    if peek c = Some ']' then begin c.i <- c.i + 1; Arr [] end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> c.i <- c.i + 1; elements (v :: acc)
        | Some ']' -> c.i <- c.i + 1; List.rev (v :: acc)
        | _ -> bad "offset %d: expected , or ] in array" c.i
      in
      Arr (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then bad "offset %d: trailing garbage" c.i;
  v

(* --- shape checks -------------------------------------------------- *)

let field obj key =
  match obj with
  | Obj kvs ->
    (match List.assoc_opt key kvs with
     | Some v -> v
     | None -> bad "missing field %S" key)
  | _ -> bad "expected an object around field %S" key

let str what = function Str s -> s | _ -> bad "%s: expected a string" what
let num what = function Num f -> f | _ -> bad "%s: expected a number" what
let arr what = function Arr xs -> xs | _ -> bad "%s: expected an array" what

let severities = [ "error"; "warning"; "info" ]

let check_diag d =
  let code = str "code" (field d "code") in
  if code = "" then bad "empty diagnostic code";
  let sev = str "severity" (field d "severity") in
  if not (List.mem sev severities) then bad "unknown severity %S" sev;
  ignore (str "pass" (field d "pass"));
  ignore (num "node_id" (field d "node_id"));
  List.iter (fun p -> ignore (str "path element" p)) (arr "path" (field d "path"));
  ignore (str "message" (field d "message"));
  (match d with
   | Obj kvs ->
     (match List.assoc_opt "hint" kvs with
      | Some h -> ignore (str "hint" h)
      | None -> ())
   | _ -> ());
  sev

let check_query q =
  let name = str "query" (field q "query") in
  if name = "" then bad "empty query name";
  ignore (str "mode" (field q "mode"));
  let errors = int_of_float (num "errors" (field q "errors")) in
  let warnings = int_of_float (num "warnings" (field q "warnings")) in
  let diags = arr "diagnostics" (field q "diagnostics") in
  let sevs = List.map check_diag diags in
  let count s = List.length (List.filter (( = ) s) sevs) in
  if count "error" <> errors then
    bad "%s: errors field says %d, diagnostics carry %d" name errors
      (count "error");
  if count "warning" <> warnings then
    bad "%s: warnings field says %d, diagnostics carry %d" name warnings
      (count "warning");
  (name, List.length diags)

let () =
  let file =
    match Sys.argv with
    | [| _; f |] -> f
    | _ -> prerr_endline "usage: json_check FILE.json"; exit 2
  in
  let text = In_channel.with_open_text file In_channel.input_all in
  match parse text with
  | exception Bad m ->
    Printf.eprintf "json_check: %s: %s\n" file m;
    exit 1
  | Arr queries ->
    (match List.map check_query queries with
     | exception Bad m ->
       Printf.eprintf "json_check: %s: %s\n" file m;
       exit 1
     | checked ->
       let diags = List.fold_left (fun acc (_, n) -> acc + n) 0 checked in
       Printf.printf "json_check: %s ok (%d queries, %d diagnostics)\n" file
         (List.length checked) diags)
  | _ ->
    Printf.eprintf "json_check: %s: top level must be an array\n" file;
    exit 1
