(* Bounds gate smoke: Q3, Q5 and Q7 run under the sanitizer (every
   observed cardinality cross-checked against its provable interval;
   BND-OBSERVED is a hard error) in Off and Bound_checked modes, and the
   bound-checked rows must be byte-identical to the baseline.  Exits
   non-zero on any mismatch — wired into `dune build @bounds`. *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Verifier = Mqr_analysis.Verifier
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.001 in
  let catalog = Workload.experiment_catalog ~sf () in
  let engine =
    Engine.create ~budget_pages:64 ~verify_plans:Verifier.Sanitize catalog
  in
  let failed = ref false in
  List.iter
    (fun name ->
       let q = Queries.find name in
       let off = Engine.run_sql engine ~mode:Dispatcher.Off q.Queries.sql in
       let bc =
         Engine.run_sql engine ~mode:Dispatcher.Bound_checked q.Queries.sql
       in
       let identical = bc.Dispatcher.rows = off.Dispatcher.rows in
       Fmt.pr "%s [bound-checked]: %d rows in %.1f ms (%d switches) %s@." name
         (Array.length bc.Dispatcher.rows)
         bc.Dispatcher.elapsed_ms bc.Dispatcher.switches
         (if identical then "= baseline" else "!!! RESULT MISMATCH");
       if not identical then failed := true)
    [ "Q3"; "Q5"; "Q7" ];
  if !failed then exit 1
