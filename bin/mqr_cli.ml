(* Command-line interface: run SQL (or the named TPC-D benchmark queries)
   against a freshly generated TPC-D catalog, with dynamic re-optimization
   on or off.

     mqr_cli run Q5 --sf 0.005 --mode full --verbose
     mqr_cli run "select count(*) as n from lineitem" --sf 0.002
     mqr_cli explain Q3
     mqr_cli queries *)

module Engine = Mqr_core.Engine
module Dispatcher = Mqr_core.Dispatcher
module Queries = Mqr_tpcd.Queries
module Workload = Mqr_tpcd.Workload
module Verifier = Mqr_analysis.Verifier
module Diagnostic = Mqr_analysis.Diagnostic
module Trace = Mqr_obs.Trace
module Metrics = Mqr_obs.Metrics

open Cmdliner

let sf_arg =
  let doc = "TPC-D scale factor for the generated catalog." in
  Arg.(value & opt float 0.002 & info [ "sf" ] ~docv:"SF" ~doc)

let skew_arg =
  let doc = "Zipf skew parameter z for non-key attributes (0 = uniform)." in
  Arg.(value & opt float 0.0 & info [ "skew" ] ~docv:"Z" ~doc)

let budget_arg =
  let doc = "Memory-manager budget in 4 KB pages." in
  Arg.(value & opt int 128 & info [ "budget" ] ~docv:"PAGES" ~doc)

let mode_arg =
  let modes =
    [ ("off", Dispatcher.Off); ("memory", Dispatcher.Memory_only);
      ("plan", Dispatcher.Plan_only); ("full", Dispatcher.Full);
      ("bound-checked", Dispatcher.Bound_checked) ]
  in
  let doc = "Re-optimization mode: off, memory, plan, full, or \
             bound-checked (full, but a switch must provably win: the \
             candidate's worst-case cost bound must beat the current \
             plan's best-case bound)." in
  Arg.(value & opt (enum modes) Dispatcher.Full & info [ "mode" ] ~doc)

let verbose_arg =
  let doc = "Print the event log and final plan." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let query_arg =
  let doc = "SQL text, or the name of a benchmark query (Q1 Q3 Q5 Q6 Q7 Q8 Q10)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

let pristine_arg =
  let doc = "Keep catalog statistics accurate (skip the stale-statistics \
             degradations used by the experiments)." in
  Arg.(value & flag & info [ "pristine" ] ~doc)

let rf_arg =
  let doc = "Enable runtime join filters: a finished hash/merge-join build \
             side publishes a bloom filter plus min-max bounds that prune \
             the probe-side scans (sideways information passing)." in
  Arg.(value & flag & info [ "runtime-filters" ] ~doc)

let parallel_arg =
  let doc = "Enable intra-query parallelism: let the optimizer assign \
             operators a degree of parallelism up to $(docv) and execute \
             their workers on a pool of that many OCaml domains.  Results \
             and simulated time are identical at every setting; only \
             wall-clock time changes." in
  Arg.(value & opt int 1 & info [ "parallel" ] ~docv:"N" ~doc)

(* user-facing errors (bad SQL, missing tables/files) print cleanly
   instead of dying with a backtrace *)
let friendly action =
  try action () with
  | Mqr_sql.Lexer.Lex_error m -> Fmt.epr "error: %s@." m; exit 1
  | Verifier.Rejected { what; diags } ->
    Fmt.epr "plan verification failed (%s):@.%a" what Diagnostic.pp_report
      diags;
    exit 1
  | Mqr_sql.Parser.Parse_error m -> Fmt.epr "error: %s@." m; exit 1
  | Mqr_sql.Query.Bind_error m -> Fmt.epr "error: %s@." m; exit 1
  | Engine.Dml_error m -> Fmt.epr "error: %s@." m; exit 1
  | Mqr_catalog.Persist.Corrupt m -> Fmt.epr "error: corrupt database: %s@." m; exit 1
  | Invalid_argument m -> Fmt.epr "error: %s@." m; exit 1
  | Sys_error m -> Fmt.epr "error: %s@." m; exit 1

let resolve_sql q =
  match Queries.find q with
  | query -> query.Queries.sql
  | exception Invalid_argument _ -> q

let make_engine ?(runtime_filters = false) ?(verify_plans = Verifier.Off)
    ?trace ?(parallel = 1) ~sf ~skew ~budget ~pristine () =
  let degradations = if pristine then [] else Workload.paper_degradations in
  let catalog = Workload.experiment_catalog ~sf ~skew_z:skew ~degradations () in
  Engine.create ~budget_pages:budget ~pool_pages:(8 * budget) ~runtime_filters
    ~verify_plans ?trace ~parallel catalog

let write_file file contents =
  Out_channel.with_open_text file (fun oc ->
    Out_channel.output_string oc contents)

let export_chrome tr file =
  write_file file (Trace.to_chrome_json tr);
  Fmt.pr "chrome trace written to %s (load it in chrome://tracing or \
          ui.perfetto.dev)@." file

let verify_arg =
  let doc = "Statically verify the instrumented plan before executing it \
             (refuse to run a plan with error-severity findings)." in
  Arg.(value & flag & info [ "verify" ] ~doc)

let sanitize_arg =
  let doc = "Sanitizer mode: --verify plus re-verification of the remainder \
             plan at every decision point and after every mid-query plan \
             switch." in
  Arg.(value & flag & info [ "sanitize" ] ~doc)

let verify_mode ~verify ~sanitize =
  if sanitize then Verifier.Sanitize
  else if verify then Verifier.Pre
  else Verifier.Off

let trace_out_arg =
  let doc = "Also record an execution trace and write it to $(docv) as \
             Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let run_cmd =
  let action query sf skew budget mode verbose pristine runtime_filters
      verify sanitize trace_out parallel progress_flag =
    friendly @@ fun () ->
    let tr = Option.map (fun _ -> Trace.create ()) trace_out in
    let engine =
      make_engine ~verify_plans:(verify_mode ~verify ~sanitize)
        ~runtime_filters ?trace:tr ~parallel ~sf ~skew ~budget ~pristine ()
    in
    let sql = resolve_sql query in
    Fmt.pr "running [%s]: %s@.@." (Dispatcher.mode_to_string mode) sql;
    let progress =
      if progress_flag then Some (Mqr_obs.Progress.create ()) else None
    in
    let report = Engine.run_sql engine ~mode ?progress sql in
    (match progress with
     | Some p ->
       List.iter
         (fun (s : Mqr_obs.Progress.sample) ->
            Fmt.pr
              "progress #%d @%9.1f ms  %-8s %5.1f%%  remaining ~%.1f ms  \
               eta [%.1f, %.1f] ms@."
              s.Mqr_obs.Progress.seq s.Mqr_obs.Progress.ts_ms
              (Mqr_obs.Progress.label_to_string s.Mqr_obs.Progress.label)
              s.Mqr_obs.Progress.percent
              s.Mqr_obs.Progress.remaining_est_ms
              s.Mqr_obs.Progress.eta_lo_ms s.Mqr_obs.Progress.eta_hi_ms)
         (Mqr_obs.Progress.samples p);
       Fmt.pr "@."
     | None -> ());
    Array.iter
      (fun t -> Fmt.pr "%a@." Mqr_storage.Tuple.pp t)
      report.Dispatcher.rows;
    Fmt.pr "@.%d rows in %.1f simulated ms (%d collectors, %d plan switches)@."
      (Array.length report.Dispatcher.rows)
      report.Dispatcher.elapsed_ms report.Dispatcher.collectors
      report.Dispatcher.switches;
    if verbose then begin
      List.iter
        (fun ev -> Fmt.pr "  %a@." Dispatcher.pp_event ev)
        report.Dispatcher.events;
      Fmt.pr "@.initial plan:@.%s@."
        (Mqr_opt.Plan.to_string report.Dispatcher.initial_plan)
    end;
    if report.Dispatcher.verifications > 0 then
      Fmt.pr "plan verified %d time(s), %d filter pages held at completion@."
        report.Dispatcher.verifications report.Dispatcher.filter_pages_held;
    if report.Dispatcher.worker_pages_peak > 0 then
      Fmt.pr "parallel workers: %d pages peak, %d held at completion@."
        report.Dispatcher.worker_pages_peak
        report.Dispatcher.worker_pages_held;
    Engine.shutdown engine;
    match tr, trace_out with
    | Some tr, Some file -> export_chrome tr file
    | _ -> ()
  in
  let progress_arg =
    let doc = "Print one decision-point progress line per estimator update \
               (percent done and the provable ETA interval on the \
               simulated clock)." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let info = Cmd.info "run" ~doc:"Execute a query." in
  Cmd.v info
    Term.(const action $ query_arg $ sf_arg $ skew_arg $ budget_arg
          $ mode_arg $ verbose_arg $ pristine_arg $ rf_arg $ verify_arg
          $ sanitize_arg $ trace_out_arg $ parallel_arg $ progress_arg)

let explain_cmd =
  let explain_verify_arg =
    let doc = "Also run the static plan verifier over the (uninstrumented) \
               plan and print its findings; exit non-zero on errors." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let action query sf skew budget pristine runtime_filters verify =
    friendly @@ fun () ->
    let engine = make_engine ~runtime_filters ~sf ~skew ~budget ~pristine () in
    if verify then begin
      let plan, diags =
        Engine.lint engine ~mode:Dispatcher.Off (resolve_sql query)
      in
      Fmt.pr "%s@." (Mqr_opt.Plan.to_string plan);
      Fmt.pr "%a" Diagnostic.pp_report diags;
      if Diagnostic.errors diags <> [] then exit 1
    end
    else
      Fmt.pr "%s@."
        (Mqr_opt.Plan.to_string (Engine.explain engine (resolve_sql query)))
  in
  let info = Cmd.info "explain" ~doc:"Show the annotated plan without executing." in
  Cmd.v info
    Term.(const action $ query_arg $ sf_arg $ skew_arg $ budget_arg
          $ pristine_arg $ rf_arg $ explain_verify_arg)

(* Machine-readable lint output.  Hand-rolled serialization (no JSON
   dependency in the image); diagnostics are emitted in the stable
   [Diagnostic.compare] order, queries in argument order, so the output
   is diffable across runs. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_diag (d : Diagnostic.t) =
  Printf.sprintf
    "{\"code\":\"%s\",\"severity\":\"%s\",\"pass\":\"%s\",\"node_id\":%d,\
     \"path\":[%s],\"message\":\"%s\"%s}"
    (json_escape d.Diagnostic.code)
    (Diagnostic.severity_to_string d.Diagnostic.severity)
    (json_escape d.Diagnostic.pass_name)
    d.Diagnostic.node_id
    (String.concat ","
       (List.map
          (fun p -> Printf.sprintf "\"%s\"" (json_escape p))
          d.Diagnostic.path))
    (json_escape d.Diagnostic.message)
    (match d.Diagnostic.hint with
     | None -> ""
     | Some h -> Printf.sprintf ",\"hint\":\"%s\"" (json_escape h))

let lint_cmd =
  let queries_arg =
    let doc = "Queries to lint (benchmark names like Q5, or SQL text); \
               defaults to every benchmark query." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let json_arg =
    let doc = "Emit machine-readable JSON (one object per query with its \
               diagnostics in stable order) instead of text.  The exit \
               code is unchanged: non-zero iff any error-severity finding." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let action queries sf skew budget mode pristine runtime_filters json =
    friendly @@ fun () ->
    let engine = make_engine ~runtime_filters ~sf ~skew ~budget ~pristine () in
    let queries =
      match queries with
      | [] -> List.map (fun (q : Queries.query) -> q.Queries.name) Queries.all
      | qs -> qs
    in
    let error_count = ref 0 in
    let json_objs = ref [] in
    List.iter
      (fun q ->
         let _plan, diags = Engine.lint engine ~mode (resolve_sql q) in
         let diags = List.stable_sort Diagnostic.compare diags in
         let errs = Diagnostic.errors diags in
         let warns = Diagnostic.warnings diags in
         error_count := !error_count + List.length errs;
         if json then
           json_objs :=
             Printf.sprintf
               "{\"query\":\"%s\",\"mode\":\"%s\",\"errors\":%d,\
                \"warnings\":%d,\"diagnostics\":[%s]}"
               (json_escape q)
               (Dispatcher.mode_to_string mode)
               (List.length errs) (List.length warns)
               (String.concat "," (List.map json_of_diag diags))
             :: !json_objs
         else begin
           Fmt.pr "%s [%s]: %s (%d error(s), %d warning(s))@." q
             (Dispatcher.mode_to_string mode)
             (if errs = [] then "ok" else "FAILED")
             (List.length errs) (List.length warns);
           List.iter (fun d -> Fmt.pr "  %a@." Diagnostic.pp d) diags
         end)
      queries;
    if json then
      Fmt.pr "[%s]@." (String.concat "," (List.rev !json_objs));
    if !error_count > 0 then begin
      if not json then Fmt.epr "lint: %d error(s)@." !error_count;
      exit 1
    end
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "Statically verify query plans without executing them: build each \
         plan exactly as the dispatcher would (instrumented with \
         statistics collectors unless --mode off) and run the analysis \
         passes (schema dataflow, annotation lints, SCIA legality, \
         resource/lifetime checks, parallel shape, cardinality bounds)."
  in
  Cmd.v info
    Term.(const action $ queries_arg $ sf_arg $ skew_arg $ budget_arg
          $ mode_arg $ pristine_arg $ rf_arg $ json_arg)

let repl_cmd =
  let action sf skew budget pristine =
    let engine = make_engine ~sf ~skew ~budget ~pristine () in
    let mode = ref Dispatcher.Full in
    Fmt.pr "mqr repl over a generated TPC-D catalog (sf=%g).@." sf;
    Fmt.pr
      "Commands: SQL statements, \\explain <sql>, \\analyze <table>, \\mode off|memory|plan|full|bound-checked, \\tables, \\q@.";
    let rec loop () =
      Fmt.pr "mqr> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line ->
        let line = String.trim line in
        (try
           if line = "" then ()
           else if line = "\\q" || line = "\\quit" then raise Exit
           else if line = "\\tables" then
             List.iter
               (fun (tbl : Mqr_catalog.Catalog.table) ->
                  Fmt.pr "  %-12s %8d rows (catalog believes %d)@."
                    tbl.Mqr_catalog.Catalog.name
                    (Mqr_storage.Heap_file.tuple_count
                       tbl.Mqr_catalog.Catalog.heap)
                    tbl.Mqr_catalog.Catalog.believed_rows)
               (List.sort
                  (fun (a : Mqr_catalog.Catalog.table) b ->
                     compare a.Mqr_catalog.Catalog.name
                       b.Mqr_catalog.Catalog.name)
                  (Mqr_catalog.Catalog.tables (Engine.catalog engine)))
           else if String.length line > 6 && String.sub line 0 6 = "\\mode " then begin
             match String.sub line 6 (String.length line - 6) with
             | "off" -> mode := Dispatcher.Off
             | "memory" -> mode := Dispatcher.Memory_only
             | "plan" -> mode := Dispatcher.Plan_only
             | "full" -> mode := Dispatcher.Full
             | "bound-checked" -> mode := Dispatcher.Bound_checked
             | m -> Fmt.pr "unknown mode %s@." m
           end
           else if String.length line > 9 && String.sub line 0 9 = "\\explain " then
             Fmt.pr "%s@."
               (Mqr_opt.Plan.to_string
                  (Engine.explain engine
                     (resolve_sql (String.sub line 9 (String.length line - 9)))))
           else if String.length line > 9 && String.sub line 0 9 = "\\analyze " then begin
             Engine.analyze engine (String.sub line 9 (String.length line - 9));
             Fmt.pr "analyzed.@."
           end
           else begin
             match Engine.execute engine ~mode:!mode (resolve_sql line) with
             | Engine.Rows report ->
               Array.iter
                 (fun t -> Fmt.pr "%a@." Mqr_storage.Tuple.pp t)
                 report.Dispatcher.rows;
               Fmt.pr "(%d rows, %.1f simulated ms, %d switches)@."
                 (Array.length report.Dispatcher.rows)
                 report.Dispatcher.elapsed_ms report.Dispatcher.switches
             | Engine.Modified { table; count } ->
               Fmt.pr "%d rows affected in %s@." count table
             | Engine.Created what -> Fmt.pr "created %s@." what
             | Engine.Analyzed table -> Fmt.pr "analyzed %s@." table
           end
         with
         | Exit -> raise Exit
         | e -> Fmt.pr "error: %s@." (Printexc.to_string e));
        loop ()
    in
    (try loop () with Exit -> ());
    Fmt.pr "bye.@."
  in
  let info = Cmd.info "repl" ~doc:"Interactive SQL shell over a TPC-D catalog." in
  Cmd.v info Term.(const action $ sf_arg $ skew_arg $ budget_arg $ pristine_arg)

let dump_cmd =
  let out_arg =
    let doc = "Directory to write the database into." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let action out sf skew pristine =
    friendly @@ fun () ->
    let degradations = if pristine then [] else Workload.paper_degradations in
    let catalog = Workload.experiment_catalog ~sf ~skew_z:skew ~degradations () in
    Mqr_catalog.Persist.save catalog ~dir:out;
    Fmt.pr "catalog written to %s@." out
  in
  let info =
    Cmd.info "dump" ~doc:"Generate a TPC-D catalog and save it as CSV files."
  in
  Cmd.v info Term.(const action $ out_arg $ sf_arg $ skew_arg $ pristine_arg)

let db_arg =
  let doc = "Load the database from this directory (written by dump)              instead of generating TPC-D data." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let load_repl_cmd =
  let action dir budget =
    friendly @@ fun () ->
    let catalog = Mqr_catalog.Persist.load ~dir in
    let engine = Engine.create ~budget_pages:budget ~pool_pages:(8 * budget) catalog in
    let mode = ref Dispatcher.Full in
    Fmt.pr "mqr repl over %s@." dir;
    let rec loop () =
      Fmt.pr "mqr> %!";
      match In_channel.input_line stdin with
      | None -> ()
      | Some line ->
        let line = String.trim line in
        (try
           if line = "" then ()
           else if line = "\\q" then raise Exit
           else begin
             match Engine.execute engine ~mode:!mode line with
             | Engine.Rows report ->
               Array.iter
                 (fun t -> Fmt.pr "%a@." Mqr_storage.Tuple.pp t)
                 report.Dispatcher.rows;
               Fmt.pr "(%d rows, %.1f simulated ms)@."
                 (Array.length report.Dispatcher.rows)
                 report.Dispatcher.elapsed_ms
             | Engine.Modified { table; count } ->
               Fmt.pr "%d rows affected in %s@." count table
             | Engine.Created what -> Fmt.pr "created %s@." what
             | Engine.Analyzed table -> Fmt.pr "analyzed %s@." table
           end
         with
         | Exit -> raise Exit
         | e -> Fmt.pr "error: %s@." (Printexc.to_string e));
        loop ()
    in
    (try loop () with Exit -> ());
    Fmt.pr "bye.@."
  in
  let info =
    Cmd.info "load" ~doc:"Open a saved database directory in an interactive shell."
  in
  Cmd.v info Term.(const action $ db_arg $ budget_arg)

let workload_cmd =
  let module Wl = Mqr_wlm.Workload in
  let queries_arg =
    let doc =
      "Queries to submit, in order (benchmark names like Q5, or SQL text)."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let concurrency_arg =
    let doc = "Maximum number of queries executing at once." in
    Arg.(value & opt int 4 & info [ "concurrency" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Run-queue capacity; further queries are rejected." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let fixed_arg =
    let doc =
      "Give every query its own fixed budget of PAGES instead of leasing \
       from the shared memory broker."
    in
    Arg.(value & opt (some int) None & info [ "fixed-pages" ] ~docv:"PAGES" ~doc)
  in
  let no_feedback_arg =
    let doc = "Disable the cross-query statistics feedback cache." in
    Arg.(value & flag & info [ "no-feedback" ] ~doc)
  in
  let jitter_arg =
    let doc = "Add a uniform random arrival delay of up to MS milliseconds." in
    Arg.(value & opt float 0.0 & info [ "jitter" ] ~docv:"MS" ~doc)
  in
  let seed_arg =
    let doc = "Seed for the arrival jitter." in
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let action queries sf skew budget mode pristine concurrency queue fixed
      no_feedback jitter seed trace_out parallel =
    friendly @@ fun () ->
    let tr = Option.map (fun _ -> Trace.create ()) trace_out in
    let engine = make_engine ~parallel ~sf ~skew ~budget ~pristine () in
    let specs =
      List.map
        (fun q ->
           let sql = resolve_sql q in
           (* benchmark names label themselves; raw SQL gets q<n> *)
           let label = if sql = q then "" else q in
           Wl.spec ~label ~mode sql)
        queries
    in
    let options =
      { Wl.max_concurrency = concurrency;
        max_queue = queue;
        memory =
          (match fixed with
           | Some pages -> Wl.Fixed_per_query pages
           | None -> Wl.Shared_broker);
        feedback = not no_feedback;
        arrival_jitter_ms = jitter;
        seed }
    in
    let report = Wl.run ~options ?trace:tr engine specs in
    Fmt.pr "%a@." Wl.pp report;
    Engine.shutdown engine;
    match tr, trace_out with
    | Some tr, Some file -> export_chrome tr file
    | _ -> ()
  in
  let info =
    Cmd.info "workload"
      ~doc:
        "Run a batch of queries concurrently under the workload manager \
         (admission control, shared memory broker, statistics feedback)."
  in
  Cmd.v info
    Term.(const action $ queries_arg $ sf_arg $ skew_arg $ budget_arg
          $ mode_arg $ pristine_arg $ concurrency_arg $ queue_arg $ fixed_arg
          $ no_feedback_arg $ jitter_arg $ seed_arg $ trace_out_arg
          $ parallel_arg)

(* The query service: a long-lived multi-tenant scheduler driven by a
   line protocol.  Interactive over stdin, scripted via --driver FILE
   (the driver-mode client the smoke tests use).  All printed times are
   simulated, so driver runs are byte-deterministic; --wall additionally
   feeds the scheduler a real clock for the wall columns of `report`. *)
let serve_cmd =
  let module Service = Mqr_wlm.Service in
  let module Session = Mqr_wlm.Session in
  let driver_arg =
    let doc = "Read protocol commands from $(docv) instead of stdin \
               (driver mode: no prompts, deterministic output)." in
    Arg.(value & opt (some string) None & info [ "driver" ] ~docv:"FILE" ~doc)
  in
  let wall_arg =
    let doc = "Measure wall-clock time (queue/latency/makespan wall columns \
               in `report`).  Off by default so driver runs stay \
               byte-deterministic." in
    Arg.(value & flag & info [ "wall" ] ~doc)
  in
  let concurrency_arg =
    let doc = "Maximum number of statements executing at once." in
    Arg.(value & opt int 4 & info [ "concurrency" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc = "Admission-queue capacity; further statements are shed." in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let policy_arg =
    let policies =
      [ ("slo-aware", Service.Slo_aware); ("round-robin", Service.Round_robin) ]
    in
    let doc = "Scheduling policy: slo-aware (EDF admission over SLO \
               deadlines, tenant fair-share memory floors) or round-robin \
               (FIFO admission, global broker: the pre-service baseline)." in
    Arg.(value & opt (enum policies) Service.Slo_aware & info [ "policy" ] ~doc)
  in
  (* first whitespace-separated token, and the trimmed remainder (which
     keeps inner spacing: SQL text survives verbatim) *)
  let split1 s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let action driver wall sf skew budget mode pristine runtime_filters verify
      sanitize concurrency queue policy trace_out parallel =
    friendly @@ fun () ->
    (* the service always carries a trace so `monitor metrics` and
       `monitor ledger` work without --trace; attaching one is pure
       observation (zero simulated ms), and the chrome export stays
       gated on the flag *)
    let tr = Trace.create () in
    let engine =
      make_engine ~runtime_filters ~verify_plans:(verify_mode ~verify ~sanitize)
        ~parallel ~sf ~skew ~budget ~pristine ()
    in
    let options =
      { Service.default_options with
        Service.max_concurrency = concurrency;
        max_queue = queue;
        policy;
        wall_clock = (if wall then Some Unix.gettimeofday else None) }
    in
    let svc = Service.create ~options ~trace:tr engine in
    let sessions : (string, Session.t) Hashtbl.t = Hashtbl.create 8 in
    let handles : (string, int) Hashtbl.t = Hashtbl.create 32 in
    let find_session name =
      match Hashtbl.find_opt sessions name with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "serve: unknown session %s" name)
    in
    let find_handle sname label =
      match Hashtbl.find_opt handles (sname ^ "/" ^ label) with
      | Some id -> id
      | None ->
        invalid_arg (Printf.sprintf "serve: unknown statement %s/%s" sname label)
    in
    let do_step n =
      let rec go i = if i < n && Service.step svc then go (i + 1) else i in
      Fmt.pr "stepped %d unit(s)@." (go 0)
    in
    let pp_status sname label = function
      | Session.Done rep ->
        Fmt.pr "%s/%s: done (%d rows, %.1f sim ms, %d switches)@." sname label
          (Array.length rep.Dispatcher.rows)
          rep.Dispatcher.elapsed_ms rep.Dispatcher.switches
      | Session.Failed m -> Fmt.pr "%s/%s: failed (%s)@." sname label m
      | st -> Fmt.pr "%s/%s: %s@." sname label (Session.status_to_string st)
    in
    let exec_line line =
      let cmd, rest = split1 line in
      match cmd with
      | "tenant" ->
        let name, rest = split1 rest in
        let slo_s, rest = split1 rest in
        let slo =
          match slo_s with
          | "interactive" -> Session.Interactive
          | "batch" -> Session.Batch
          | s -> invalid_arg (Printf.sprintf "serve: unknown SLO class %s" s)
        in
        let weight, rest =
          match split1 rest with
          | "", _ -> (None, "")
          | w, r -> (Some (int_of_string w), r)
        in
        let target_ms =
          match split1 rest with
          | "", _ -> None
          | t, _ -> Some (float_of_string t)
        in
        Service.add_tenant ?weight ?target_ms svc ~slo name;
        Fmt.pr "tenant %s registered (%s)@." name (Session.slo_to_string slo)
      | "session" ->
        let sname, rest = split1 rest in
        let tenant, _ = split1 rest in
        if Hashtbl.mem sessions sname then
          invalid_arg (Printf.sprintf "serve: session %s already open" sname);
        let s = Service.open_session svc ~tenant in
        Hashtbl.replace sessions sname s;
        Fmt.pr "session %s open for tenant %s (#%d)@." sname tenant (Session.id s)
      | "submit" ->
        let sname, rest = split1 rest in
        let label, rest = split1 rest in
        let arrival_ms, sql =
          if rest <> "" && rest.[0] = '@' then
            let a, rest = split1 rest in
            (float_of_string (String.sub a 1 (String.length a - 1)), rest)
          else (0.0, rest)
        in
        if label = "" || sql = "" then
          invalid_arg "serve: usage: submit SESSION LABEL [@ARRIVAL_MS] SQL";
        let s = find_session sname in
        let id = Session.submit ~label ~mode ~arrival_ms s (resolve_sql sql) in
        Hashtbl.replace handles (sname ^ "/" ^ label) id;
        Fmt.pr "submitted %s/%s (#%d, %s)@." sname label id
          (Session.status_to_string (Session.poll s id))
      | "step" ->
        let n = match rest with "" -> 1 | n -> int_of_string n in
        do_step n
      | "drain" ->
        Service.drain svc;
        Fmt.pr "drained (idle)@."
      | "poll" ->
        let sname, rest = split1 rest in
        let label, _ = split1 rest in
        pp_status sname label (Session.poll (find_session sname) (find_handle sname label))
      | "rows" ->
        let sname, rest = split1 rest in
        let label, _ = split1 rest in
        (match Session.result (find_session sname) (find_handle sname label) with
         | Some rep ->
           Array.iter
             (fun t -> Fmt.pr "%a@." Mqr_storage.Tuple.pp t)
             rep.Dispatcher.rows;
           Fmt.pr "(%d rows)@." (Array.length rep.Dispatcher.rows)
         | None -> Fmt.pr "%s/%s: no result@." sname label)
      | "cancel" ->
        let sname, rest = split1 rest in
        let label, _ = split1 rest in
        let ok = Session.cancel (find_session sname) (find_handle sname label) in
        Fmt.pr "cancel %s/%s: %s@." sname label (if ok then "ok" else "no-op")
      | "close" ->
        let sname, _ = split1 rest in
        Session.close (find_session sname);
        Fmt.pr "session %s closed@." sname
      | "report" -> Fmt.pr "%a@." Service.pp_report (Service.report svc)
      | "monitor" ->
        (* monitor VIEW [json [FILE]] | monitor metrics [FILE] *)
        let module Monitor = Mqr_wlm.Monitor in
        let what, rest = split1 rest in
        let emit file contents =
          match file with
          | "" -> print_string contents
          | f ->
            write_file f contents;
            Fmt.pr "wrote %s@." f
        in
        (match what with
         | "metrics" ->
           let file, _ = split1 rest in
           emit file (Monitor.prometheus svc)
         | _ ->
           (match Monitor.view_of_string what with
            | None ->
              invalid_arg
                (Printf.sprintf
                   "serve: unknown monitor view %s (expected %s or metrics)"
                   what
                   (String.concat "|" Monitor.view_names))
            | Some view ->
              (match split1 rest with
               | "json", rest ->
                 let file, _ = split1 rest in
                 emit file (Monitor.to_json svc view)
               | "", _ -> print_string (Monitor.render svc view)
               | fmt, _ ->
                 invalid_arg
                   (Printf.sprintf "serve: unknown monitor format %s" fmt))))
      | c -> invalid_arg (Printf.sprintf "serve: unknown command %s" c)
    in
    let ic = match driver with Some f -> open_in f | None -> stdin in
    Fmt.pr "mqr service: policy %s, concurrency %d, budget %d pages%s@."
      (Service.policy_to_string policy)
      concurrency budget
      (match Engine.verify_mode engine with
       | Verifier.Sanitize -> " [sanitize]"
       | Verifier.Pre -> " [verify]"
       | Verifier.Off -> "");
    let cleanup () =
      if driver <> None then close_in_noerr ic;
      Engine.shutdown engine
    in
    Fun.protect ~finally:cleanup (fun () ->
      let rec loop () =
        (if driver = None then Fmt.pr "svc> %!");
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          let line = String.trim line in
          if line = "quit" then ()
          else begin
            if line <> "" && line.[0] <> '#' then
              (try exec_line line with
               (* sanitizer findings (TEN-LIFETIME etc.) are bugs: abort
                  the serve loop so smokes fail loudly *)
               | Verifier.Rejected _ as e -> raise e
               | Invalid_argument m | Failure m -> Fmt.pr "error: %s@." m
               | Mqr_sql.Lexer.Lex_error m
               | Mqr_sql.Parser.Parse_error m
               | Mqr_sql.Query.Bind_error m -> Fmt.pr "error: %s@." m);
            loop ()
          end
      in
      loop ());
    Fmt.pr "bye.@.";
    match trace_out with
    | Some file -> export_chrome tr file
    | None -> ()
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the engine as a long-lived multi-tenant query service.  \
         Commands (one per line, # comments): tenant NAME \
         interactive|batch [WEIGHT] [TARGET_MS]; session NAME TENANT; \
         submit SESSION LABEL [@ARRIVAL_MS] SQL; step [N]; drain; poll \
         SESSION LABEL; rows SESSION LABEL; cancel SESSION LABEL; close \
         SESSION; report; monitor \
         statements|sessions|tenants|broker|ledger [json [FILE]]; monitor \
         metrics [FILE]; quit."
  in
  Cmd.v info
    Term.(const action $ driver_arg $ wall_arg $ sf_arg $ skew_arg
          $ budget_arg $ mode_arg $ pristine_arg $ rf_arg $ verify_arg
          $ sanitize_arg $ concurrency_arg $ queue_arg $ policy_arg
          $ trace_out_arg $ parallel_arg)

let trace_cmd =
  let queries_arg =
    let doc = "Queries to trace (benchmark names like Q5, or SQL text); \
               defaults to every benchmark query." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let out_arg =
    let doc = "Write the Chrome trace-event JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let summary_arg =
    let doc = "Write the compact JSON summary (spans, metrics, ledger) to \
               $(docv)." in
    Arg.(value & opt (some string) None & info [ "summary" ] ~docv:"FILE" ~doc)
  in
  let action queries sf skew budget mode pristine runtime_filters out summary =
    friendly @@ fun () ->
    let tr = Trace.create () in
    let engine =
      make_engine ~runtime_filters ~trace:tr ~sf ~skew ~budget ~pristine ()
    in
    let queries =
      match queries with
      | [] -> List.map (fun (q : Queries.query) -> q.Queries.name) Queries.all
      | qs -> qs
    in
    List.iter
      (fun q ->
         let report =
           Engine.run_query engine ~mode ~label:q
             (Engine.bind_sql engine (resolve_sql q))
         in
         Fmt.pr "%s [%s]: %d rows in %.1f simulated ms (%d collectors, %d \
                 switches)@."
           q
           (Dispatcher.mode_to_string mode)
           (Array.length report.Dispatcher.rows)
           report.Dispatcher.elapsed_ms report.Dispatcher.collectors
           report.Dispatcher.switches)
      queries;
    Fmt.pr "@.%a@." Trace.pp_ledger tr;
    Fmt.pr "@.metrics:@.%a@." Metrics.pp (Trace.metrics tr);
    (match out with Some file -> export_chrome tr file | None -> ());
    match summary with
    | Some file ->
      write_file file (Trace.to_summary_json tr);
      Fmt.pr "summary written to %s@." file
    | None -> ()
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Execute queries with the observability subsystem attached: \
         operator/unit/query spans over the simulated clock, a \
         decision-point audit ledger with the Eq. 1/Eq. 2 terms behind \
         every re-optimization decision, and engine metrics.  Tracing \
         never charges the simulated clock, so timings match an untraced \
         run exactly."
  in
  Cmd.v info
    Term.(const action $ queries_arg $ sf_arg $ skew_arg $ budget_arg
          $ mode_arg $ pristine_arg $ rf_arg $ out_arg $ summary_arg)

let queries_cmd =
  let action () =
    List.iter
      (fun (q : Queries.query) ->
         Fmt.pr "%-4s %-8s %d joins@.  %s@.@." q.Queries.name
           (Queries.klass_to_string q.Queries.klass)
           q.Queries.joins q.Queries.sql)
      Queries.all
  in
  let info = Cmd.info "queries" ~doc:"List the benchmark queries." in
  Cmd.v info Term.(const action $ const ())

let () =
  let info =
    Cmd.info "mqr_cli"
      ~doc:"Mid-query re-optimization engine (Kabra & DeWitt, SIGMOD 1998)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; explain_cmd; lint_cmd; trace_cmd; queries_cmd;
            workload_cmd; serve_cmd; repl_cmd; dump_cmd; load_repl_cmd ]))
